package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/tools/repolint/lint"
)

// wantRe extracts the expectation from a `// want "regex"` comment.
// The quoted text is an unanchored regexp matched against the
// diagnostic message reported on the same line.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type expectation struct {
	file string // relative to the fixture root
	line int
	re   *regexp.Regexp
	hit  bool
}

// loadExpectations walks a fixture module and collects every
// `// want` annotation, keyed by file and line.
func loadExpectations(t *testing.T, root string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, _ := filepath.Rel(root, path)
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp: %w", rel, line, err)
				}
				wants = append(wants, &expectation{file: rel, line: line, re: re})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("collecting want comments: %v", err)
	}
	return wants
}

// TestAnalyzersAgainstFixtures runs each analyzer over its fixture
// module and demands an exact match between reported diagnostics and
// `// want` annotations: a diagnostic with no want is a failure, and
// so is a want with no diagnostic. This keeps the analyzers honest in
// both directions — no silent false positives, no silent misses.
func TestAnalyzersAgainstFixtures(t *testing.T) {
	cases := []struct {
		fixture    string
		analyzer   *lint.Analyzer
		suppressed int
	}{
		{"determinism", lint.Determinism, 1},
		{"ctx", lint.CtxDiscipline, 0},
		{"epoch", lint.Epoch, 0},
		{"locks", lint.Locks, 0},
		{"errwrap", lint.ErrWrap, 0},
		{"apipolicy", lint.APIPolicy, 0},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			root := filepath.Join("testdata", "src", tc.fixture)
			res, err := lint.Run(root, tc.fixture, []*lint.Analyzer{tc.analyzer})
			if err != nil {
				t.Fatalf("lint.Run: %v", err)
			}
			wants := loadExpectations(t, root)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want annotations; the test would pass vacuously", tc.fixture)
			}
			for _, d := range res.Diags {
				// Positions may be reported relative to the working
				// directory or absolute; normalize to fixture-relative
				// either way.
				rel, err := filepath.Rel(root, d.Pos.Filename)
				if err != nil || strings.HasPrefix(rel, "..") {
					if abs, aerr := filepath.Abs(root); aerr == nil {
						if r2, rerr := filepath.Rel(abs, d.Pos.Filename); rerr == nil {
							rel = r2
						}
					}
				}
				matched := false
				for _, w := range wants {
					if w.hit || w.file != rel || w.line != d.Pos.Line {
						continue
					}
					if w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: want %q: no matching diagnostic", w.file, w.line, w.re)
				}
			}
			if res.Suppressed != tc.suppressed {
				t.Errorf("suppressed = %d, want %d", res.Suppressed, tc.suppressed)
			}
		})
	}
}
