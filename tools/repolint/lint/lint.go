// Package lint is the analysis framework behind the repolint binary:
// a dependency-free (stdlib go/ast + go/parser + go/types) analyzer
// suite that mechanically enforces the repository's determinism,
// context, epoch, lock, error and API invariants. Each invariant the
// codebase relies on — seeded RNG only, epoch-per-mutation cache
// invalidation, ctx threaded through every evaluation loop,
// sentinel-wrapped boundary errors, lock-guarded shard state, the
// facade-only import policy — is encoded as one Analyzer, run over
// every package of the module.
//
// Diagnostics can be suppressed with an inline directive on the same
// line or the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; suppressions are counted and reported so
// their number stays reviewable.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Analyzer is one invariant check, run once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is the one-line description the -list flag prints.
	Doc string
	// Run inspects one package and reports violations via pass.Reportf.
	Run func(pass *Pass)
}

// All is the full suite, in the order diagnostics are grouped.
var All = []*Analyzer{
	Determinism,
	CtxDiscipline,
	Epoch,
	Locks,
	ErrWrap,
	APIPolicy,
}

// Pass carries everything an analyzer sees of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// RelDir is the package directory relative to the module root,
	// slash-separated ("" for the root package).
	RelDir string
	// Module is the module path from go.mod; RelDir appended to it is
	// the package's import path.
	Module string
	// Info holds best-effort type information: module-internal types
	// resolve fully, identifiers from standard-library imports may
	// not (their packages are stubbed so the module never needs
	// go.sum). Analyzers must treat missing type info as "unknown",
	// never as a violation.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Result is one Run over a module tree.
type Result struct {
	// Diags are the surviving (unsuppressed) diagnostics, in file and
	// position order.
	Diags []Diagnostic
	// Suppressed counts diagnostics silenced by //lint:ignore
	// directives.
	Suppressed int
}

// Run lints every package under root (a directory containing go.mod,
// or any directory when module is given explicitly) with the given
// analyzers and returns the surviving diagnostics. Test files and
// testdata trees are skipped: the invariants bind the shipped code,
// and tests legitimately use context.Background, wall clocks and
// unguarded fixtures.
func Run(root, module string, analyzers []*Analyzer) (*Result, error) {
	pkgs, fset, err := load(root)
	if err != nil {
		return nil, err
	}
	typecheck(pkgs, fset, module)

	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.files,
				RelDir:   pkg.relDir,
				Module:   module,
				Info:     pkg.info,
				diags:    &diags,
			})
		}
	}

	ignores := collectIgnores(pkgs, fset)
	res := &Result{}
	for _, d := range diags {
		if ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
			ignores[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}] {
			res.Suppressed++
			continue
		}
		res.Diags = append(res.Diags, d)
	}
	sort.Slice(res.Diags, func(i, j int) bool {
		a, b := res.Diags[i].Pos, res.Diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return res.Diags[i].Analyzer < res.Diags[j].Analyzer
	})
	return res, nil
}

// ModuleRoot walks up from dir to the nearest go.mod and returns its
// directory and module path.
func ModuleRoot(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		b, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(b), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// pkg is one parsed package directory.
type pkg struct {
	relDir  string
	files   []*ast.File
	names   []string // file names, parallel to files
	imports []string // module-internal imports (for typecheck ordering)
	info    *types.Info
}

// load parses every non-test package under root, skipping testdata,
// hidden directories and nested modules.
func load(root string) ([]*pkg, *token.FileSet, error) {
	fset := token.NewFileSet()
	var pkgs []*pkg
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if path != root {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		p := &pkg{}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		p.relDir = filepath.ToSlash(rel)
		if p.relDir == "." {
			p.relDir = ""
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			fname := filepath.Join(path, e.Name())
			f, err := parser.ParseFile(fset, fname, nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("lint: %w", err)
			}
			p.files = append(p.files, f)
			p.names = append(p.names, fname)
		}
		if len(p.files) > 0 {
			pkgs = append(pkgs, p)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return pkgs, fset, nil
}

// typecheck runs go/types over every package, best-effort: module
// packages are checked in dependency order and import each other's
// real type information; standard-library imports are stubbed with
// empty packages (the module must stay dependency-free, so no export
// data is assumed). Type errors are collected and discarded —
// analyzers see partial but trustworthy info.
func typecheck(pkgs []*pkg, fset *token.FileSet, module string) {
	byPath := make(map[string]*pkg, len(pkgs))
	for _, p := range pkgs {
		path := module
		if p.relDir != "" {
			path = module + "/" + p.relDir
		}
		byPath[path] = p
		for _, f := range p.files {
			for _, imp := range f.Imports {
				if v, err := strconv.Unquote(imp.Path.Value); err == nil && strings.HasPrefix(v, module+"/") {
					p.imports = append(p.imports, v)
				}
			}
		}
	}
	imp := &stubImporter{checked: make(map[string]*types.Package), byPath: byPath, fset: fset, module: module}
	for path := range byPath {
		imp.check(path)
	}
}

// stubImporter resolves module-internal imports by typechecking them
// on demand and stubs everything else.
type stubImporter struct {
	checked map[string]*types.Package
	byPath  map[string]*pkg
	fset    *token.FileSet
	module  string
	stack   []string // cycle guard
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	return si.check(path), nil
}

func (si *stubImporter) check(path string) *types.Package {
	if p, ok := si.checked[path]; ok {
		return p
	}
	src, isModulePkg := si.byPath[path]
	for _, s := range si.stack {
		if s == path {
			isModulePkg = false // import cycle: stub to break it
			break
		}
	}
	if !isModulePkg {
		name := path[strings.LastIndex(path, "/")+1:]
		p := types.NewPackage(path, name)
		p.MarkComplete()
		si.checked[path] = p
		return p
	}
	si.stack = append(si.stack, path)
	defer func() { si.stack = si.stack[:len(si.stack)-1] }()
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{
		Importer:         si,
		Error:            func(error) {}, // stubbed imports make errors expected; info stays usable
		IgnoreFuncBodies: false,
	}
	p, _ := cfg.Check(path, si.fset, si.byPath[path].files, info)
	if p == nil {
		p = types.NewPackage(path, "")
	}
	p.MarkComplete()
	src.info = info
	si.checked[path] = p
	return p
}

var ignoreRe = regexp.MustCompile(`//lint:ignore\s+(\S+)\s+\S`)

// ignoreKey addresses one //lint:ignore directive: a diagnostic is
// suppressed when a directive for its analyzer sits on its line or
// the line directly above.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

func collectIgnores(pkgs []*pkg, fset *token.FileSet) map[ignoreKey]bool {
	out := make(map[ignoreKey]bool)
	for _, p := range pkgs {
		for i, f := range p.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := ignoreRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					out[ignoreKey{p.names[i], fset.Position(c.Pos()).Line, m[1]}] = true
				}
			}
		}
	}
	return out
}

// funcName renders a FuncDecl's name with its receiver for messages.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return recvTypeName(fd) + "." + fd.Name.Name
}

// recvTypeName returns the bare receiver type name of a method ("" for
// functions).
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		default:
			if id, ok := t.(*ast.Ident); ok {
				return id.Name
			}
			return ""
		}
	}
}

// importName returns the local name a file binds the given import path
// to, or "" when the file does not import it.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		v, err := strconv.Unquote(imp.Path.Value)
		if err != nil || v != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return path[strings.LastIndex(path, "/")+1:]
	}
	return ""
}

// isIdent reports whether e is the identifier name.
func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

// exprString renders a (simple) expression for matching: identifiers
// and dotted selector chains only.
func exprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		base := exprString(t.X)
		if base == "" {
			return ""
		}
		return base + "." + t.Sel.Name
	case *ast.ParenExpr:
		return exprString(t.X)
	case *ast.StarExpr:
		return exprString(t.X)
	}
	return ""
}
