// Package obs is the clock-owner fixture: the telemetry package may
// read the wall clock (it IS the module's Clock seam), but the other
// determinism rules still hold inside it.
package obs

import (
	"math/rand" // want "import of math/rand: all randomness must come from a seeded internal/rng.Source"
	"time"
)

// Now is the allowed shape: only the clock owner reads the wall clock.
func Now() int64 { return time.Now().UnixNano() }

// Uptime may also use the clock family.
func Uptime(start time.Time) time.Duration { return time.Since(start) }

// Jitter still may not draw from the global RNG.
func Jitter() int64 { return rand.Int63() }

// Dump still may not range over a map.
func Dump(m map[string]int64) int64 {
	var n int64
	for _, v := range m { // want "ranging over a map iterates in nondeterministic order"
		n += v
	}
	return n
}
