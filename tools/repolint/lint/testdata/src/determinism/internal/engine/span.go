// Package engine is the span-id fixture: trace and span ids must come
// from a registry's deterministic counter, and span timestamps from
// the obs Clock seam — internal/obs stays the module's sole clock
// owner, and random ids would break trace replay.
package engine

import (
	"math/rand" // want "import of math/rand: all randomness must come from a seeded internal/rng.Source"
	"time"
)

// NewSpanID models the forbidden shape: a span id drawn from the
// global RNG.
func NewSpanID() uint64 { return rand.Uint64() }

// SpanStart models the forbidden shape: a span timestamp read from
// the wall clock instead of the registry's Clock.
func SpanStart() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}
