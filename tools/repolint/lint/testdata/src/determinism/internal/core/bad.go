// Package core is the determinism fixture: every forbidden construct
// once, inside the checked scope.
package core

import (
	"math/rand" // want "import of math/rand: all randomness must come from a seeded internal/rng.Source"
	"time"
)

// Roll draws from the global RNG — forbidden in the evaluation core.
func Roll() int { return rand.Intn(6) }

// Stamp reads the wall clock.
func Stamp() int64 {
	t := time.Now() // want "time.Now reads the wall clock"
	return t.Unix()
}

// Sum ranges over a map — nondeterministic iteration order.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m { // want "ranging over a map iterates in nondeterministic order"
		n += v
	}
	return n
}

// SumSorted is the blessed shape: iterate a sorted key slice.
func SumSorted(m map[string]int, keys []string) int {
	n := 0
	for _, k := range keys {
		n += m[k]
	}
	return n
}

// SumSuppressed carries an inline suppression: counted, not reported.
func SumSuppressed(m map[string]int) int {
	n := 0
	//lint:ignore determinism fixture: order-insensitive count
	for _, v := range m {
		n += v
	}
	return n
}
