module determinism

go 1.22
