// Command app shows the scope boundary: cmd/ is presentation, where
// wall clocks and map ranges are fine.
package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(time.Now())
	for k, v := range map[string]int{"a": 1} {
		fmt.Println(k, v)
	}
}
