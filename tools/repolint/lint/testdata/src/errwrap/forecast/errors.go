// Package forecast is the boundary half of the errwrap fixture: every
// error built here crosses the public facade, so each one must wrap a
// sentinel.
package forecast

import (
	"errors"
	"fmt"
)

// ErrData is a package-level sentinel: the one sanctioned errors.New.
var ErrData = errors.New("forecast: bad data")

// Open wraps the sentinel — the blessed shape.
func Open(name string) error {
	return fmt.Errorf("%w: cannot open %q", ErrData, name)
}

// Bare builds an unclassifiable error at the boundary.
func Bare(name string) error {
	return fmt.Errorf("cannot open %q", name) // want "fmt.Errorf without %w in a boundary package"
}

// Inline mints a sentinel-less error inside a function.
func Inline() error {
	return errors.New("transient") // want "errors.New inside a function builds an unclassifiable error"
}

// Concat keeps the %w in a built-up format string — still fine.
func Concat(name string, err error) error {
	return fmt.Errorf("%w: "+"open %q: %v", ErrData, name, err)
}
