module errwrap

go 1.22
