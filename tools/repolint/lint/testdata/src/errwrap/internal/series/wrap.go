// Package series is the module-wide half of the errwrap fixture:
// outside the boundary packages, fmt.Errorf is free-form — unless it
// formats an error, which must travel through %w.
package series

import "fmt"

// Wrap preserves the chain.
func Wrap(err error) error {
	return fmt.Errorf("parse: %w", err)
}

// Sever formats the error with %v, losing errors.Is/As.
func Sever(err error) error {
	return fmt.Errorf("parse: %v", err) // want "fmt.Errorf formats an error without %w"
}

// Plain formats no error at all: nothing to wrap.
func Plain(line int) error {
	return fmt.Errorf("parse failure at line %d", line)
}
