module apipolicy

go 1.22
