// Package forecast is the public facade — the one sanctioned consumer
// of internal/core.
package forecast

import "apipolicy/internal/core"

// Width exposes a core capability through the facade.
func Width(r core.Rule) int { return r.D }
