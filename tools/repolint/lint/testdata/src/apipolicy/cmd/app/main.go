// Command app reaches into internal/core — the import policy
// violation.
package main

import (
	"fmt"

	"apipolicy/internal/core" // want "cmd/app imports apipolicy/internal/core: binaries and examples must use the public forecast facade"
)

func main() {
	fmt.Println(core.Rule{D: 3}.D)
}
