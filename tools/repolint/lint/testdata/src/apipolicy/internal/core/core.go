// Package core stands in for the engine internals the facade hides.
package core

// Rule is an internal type binaries must not reach for.
type Rule struct{ D int }
