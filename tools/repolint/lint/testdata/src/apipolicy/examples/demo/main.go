// Command demo shows the rule binds examples/ too.
package main

import (
	"fmt"

	"apipolicy/internal/core" // want "examples/demo imports apipolicy/internal/core"
)

func main() {
	fmt.Println(core.Rule{D: 3}.D)
}
