// Package engine is the epoch fixture: a store implementation whose
// mutating verbs must reach an epoch bump, directly or through a
// helper.
package engine

// counter mimics atomic.Uint64's bump surface.
type counter struct{ v uint64 }

func (c *counter) Add(d uint64) uint64 { c.v += d; return c.v }
func (c *counter) Store(v uint64)      { c.v = v }
func (c *counter) Load() uint64        { return c.v }

// Shards matches a checked store implementation name.
type Shards struct {
	rows  []float64
	epoch counter
}

// Append bumps directly.
func (s *Shards) Append(v float64) {
	s.rows = append(s.rows, v)
	s.epoch.Add(1)
}

// Delete reaches the bump through a helper — the fixpoint must see it.
func (s *Shards) Delete(i int) {
	s.rows = append(s.rows[:i], s.rows[i+1:]...)
	s.finishMutationLocked()
}

func (s *Shards) finishMutationLocked() { s.epoch.Store(s.epoch.Load() + 1) }

// Window forgets the bump entirely: a stale cached evaluation would
// survive this mutation.
func (s *Shards) Window(n int) { // want "Window mutates the store but never reaches an epoch bump"
	if n < len(s.rows) {
		s.rows = s.rows[len(s.rows)-n:]
	}
}

// Len is not a mutation verb; no bump required.
func (s *Shards) Len() int { return len(s.rows) }

// Other is not a checked type; its verbs are out of scope.
type Other struct{ epoch counter }

func (o *Other) Window(n int) {}
