module epoch

go 1.22
