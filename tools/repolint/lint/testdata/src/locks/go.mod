module locks

go 1.22
