// Package engine is the lock-discipline fixture: guarded fields,
// *Locked helpers, read-lock writes, and unpaired Lock calls.
package engine

import "sync"

// Store has one annotated field; the analyzer keys on the comment.
type Store struct {
	mu   sync.RWMutex
	data []int // guarded by mu
	n    int   // unguarded: freely accessible
}

// Len locks correctly.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Peek touches the guarded field with no lock and no Locked name.
func (s *Store) Peek() int {
	return s.data[0] // want "Peek touches s.data .guarded by mu. without locking mu"
}

// peekLocked is the documented callers-hold-mu shape.
func (s *Store) peekLocked() int { return s.data[0] }

// Grow writes under only the read lock.
func (s *Store) Grow() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.data = append(s.data, 0) // want "Grow writes s.data .guarded by mu. while holding only the read lock"
}

// Count touches only the unguarded field: no lock needed.
func (s *Store) Count() int { return s.n }

// Leak locks and never unlocks.
func (s *Store) Leak() {
	s.mu.Lock() // want "Leak calls s.mu.Lock.. but never s.mu.Unlock.."
	s.data = nil
}

// Typo defers the Lock instead of the Unlock.
func (s *Store) Typo() {
	defer s.mu.Lock() // want "defer s.mu.Lock.. — the classic typo"
	s.data = nil
}
