// Command app shows the exemption: func main is where root contexts
// are born.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

// run inherits main's context; minting its own would be flagged.
func run(ctx context.Context) error {
	detached := context.Background() // want "context.Background outside func main severs the cancellation chain"
	_ = detached
	return ctx.Err()
}
