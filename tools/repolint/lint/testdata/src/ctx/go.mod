module ctx

go 1.22
