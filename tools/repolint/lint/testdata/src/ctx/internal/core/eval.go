// Package core is the context-discipline fixture: conjured root
// contexts and ctx-less callers of the evaluation verbs.
package core

import "context"

// Evaluator stands in for the real evaluation data plane.
type Evaluator struct{}

func (Evaluator) EvaluateAll(ctx context.Context, pop []int) error { return nil }
func (Evaluator) MatchBatch(ctx context.Context, rules []int) [][]int {
	return nil
}

// Train takes and passes a context — the blessed shape.
func Train(ctx context.Context, e Evaluator, pop []int) error {
	return e.EvaluateAll(ctx, pop)
}

// TrainDetached conjures a root context mid-stack.
func TrainDetached(e Evaluator, pop []int) error {
	return e.EvaluateAll(context.Background(), pop) // want "context.Background outside func main severs the cancellation chain" // want "TrainDetached calls EvaluateAll but takes no context.Context"
}

// Match calls an evaluation verb without taking a context at all.
func Match(e Evaluator, rules []int) [][]int {
	ctx := context.TODO()           // want "context.TODO outside func main severs the cancellation chain"
	return e.MatchBatch(ctx, rules) // want "Match calls MatchBatch but takes no context.Context"
}
