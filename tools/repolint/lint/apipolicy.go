package lint

import (
	"strconv"
	"strings"
)

// APIPolicy enforces the facade rule: binaries (cmd/) and examples
// may only consume the public forecast facade, never
// internal/core directly. The facade is the compatibility surface —
// anything a binary reaches into core for is a capability the facade
// is missing, which should be fixed there, not worked around.
var APIPolicy = &Analyzer{
	Name: "apipolicy",
	Doc:  "cmd/ and examples/ import the forecast facade, never internal/core",
	Run:  runAPIPolicy,
}

func runAPIPolicy(pass *Pass) {
	if !inScope(pass.RelDir, []string{"cmd", "examples"}) {
		return
	}
	banned := pass.Module + "/internal/core"
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			v, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if v == banned || strings.HasPrefix(v, banned+"/") {
				pass.Reportf(imp.Pos(), "%s imports %s: binaries and examples must use the public forecast facade", pass.RelDir, v)
			}
		}
	}
}
