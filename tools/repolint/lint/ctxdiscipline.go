package lint

import (
	"go/ast"
)

// evalVerbs are the batch entry points of the evaluation data plane.
// Everything that reaches them must be cancellable: PR 4 threaded
// context.Context through every run loop precisely so a training pass
// over a remote cluster can be interrupted; a caller that conjures a
// root context mid-stack silently severs that chain.
var evalVerbs = map[string]bool{
	"EvaluateAll":   true,
	"EvaluateBatch": true,
	"MatchBatch":    true,
}

// CtxDiscipline enforces the context chain: context.Background() and
// context.TODO() belong only in main functions (and tests, which the
// driver skips) — everywhere else the context must arrive as a
// parameter; and any function calling the batch evaluation verbs
// (EvaluateAll, EvaluateBatch, MatchBatch) must itself take a
// context.Context so cancellation reaches the data plane.
var CtxDiscipline = &Analyzer{
	Name: "ctx",
	Doc:  "no context.Background/TODO outside main; eval/match callers must take a ctx",
	Run:  runCtxDiscipline,
}

func runCtxDiscipline(pass *Pass) {
	for _, f := range pass.Files {
		ctxName := importName(f, "context")
		isMainPkg := f.Name.Name == "main"
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exemptRoot := isMainPkg && fd.Recv == nil && fd.Name.Name == "main"
			hasCtxParam := false
			if fd.Type.Params != nil {
				for _, p := range fd.Type.Params.List {
					if ctxName != "" && exprString(p.Type) == ctxName+".Context" {
						hasCtxParam = true
					}
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if ctxName != "" && isIdent(sel.X, ctxName) &&
					(sel.Sel.Name == "Background" || sel.Sel.Name == "TODO") && !exemptRoot {
					pass.Reportf(call.Pos(), "context.%s outside func main severs the cancellation chain; accept a ctx parameter instead", sel.Sel.Name)
				}
				if evalVerbs[sel.Sel.Name] && !hasCtxParam && !exemptRoot {
					pass.Reportf(call.Pos(), "%s calls %s but takes no context.Context: cancellation cannot reach the evaluation data plane", funcName(fd), sel.Sel.Name)
				}
				return true
			})
		}
	}
}
