package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// errBoundary lists the packages whose errors cross an API or process
// boundary: the public forecast facade and the remote transport.
// Callers there dispatch on sentinels (forecast.ErrData/ErrRemote,
// remote.ErrTransport, core.ErrConfig) with errors.Is, so every error
// built in these packages must wrap one — a bare fmt.Errorf produces
// a string that no caller can classify.
var errBoundary = []string{
	"forecast",
	"internal/remote",
}

// ErrWrap enforces the error-chain rules: module-wide, a fmt.Errorf
// that is handed an error value must use %w (a %v silently severs the
// chain for errors.Is/As); inside the boundary packages, every
// fmt.Errorf must contain %w (wrapping a sentinel or a downstream
// error) and errors.New may only appear in package-level sentinel
// declarations.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "errors crossing the forecast/remote boundary wrap a sentinel; error args use %w",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	boundary := inScope(pass.RelDir, errBoundary)
	for _, f := range pass.Files {
		fmtName := importName(f, "fmt")
		errorsName := importName(f, "errors")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if boundary && errorsName != "" && isIdent(sel.X, errorsName) && sel.Sel.Name == "New" {
					pass.Reportf(call.Pos(), "errors.New inside a function builds an unclassifiable error: declare a package-level sentinel and wrap it with %%w")
					return true
				}
				if fmtName == "" || !isIdent(sel.X, fmtName) || sel.Sel.Name != "Errorf" || len(call.Args) == 0 {
					return true
				}
				format, literal := formatLiteral(call.Args[0])
				if !literal {
					return true // format built at runtime: unknown, not a violation
				}
				hasW := strings.Contains(format, "%w")
				switch {
				case boundary && !hasW:
					pass.Reportf(call.Pos(), "fmt.Errorf without %%w in a boundary package: wrap a sentinel (ErrData/ErrRemote/ErrTransport/ErrConfig) so callers can errors.Is on it")
				case !boundary && !hasW && hasErrorArg(pass, call.Args[1:]):
					pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w, severing the chain for errors.Is/As")
				}
				return true
			})
		}
	}
}

// formatLiteral resolves a fmt format expression to the concatenation
// of its string-literal parts; ok is false when no literal part is
// visible (a runtime-built format).
func formatLiteral(e ast.Expr) (s string, ok bool) {
	switch t := e.(type) {
	case *ast.BasicLit:
		if t.Kind.String() != "STRING" {
			return "", false
		}
		v, err := strconv.Unquote(t.Value)
		if err != nil {
			return "", false
		}
		return v, true
	case *ast.BinaryExpr: // "prefix: " + format — the literal parts decide
		l, lok := formatLiteral(t.X)
		r, rok := formatLiteral(t.Y)
		if !lok && !rok {
			return "", false
		}
		return l + r, true
	case *ast.ParenExpr:
		return formatLiteral(t.X)
	}
	return "", false
}

// hasErrorArg reports whether any argument is an error value, by type
// information when available and by the err-naming convention when the
// type is unknown (stubbed stdlib imports leave gaps).
func hasErrorArg(pass *Pass, args []ast.Expr) bool {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, a := range args {
		if tv, ok := pass.Info.Types[a]; ok && tv.Type != nil {
			if types.Implements(tv.Type, errType) {
				return true
			}
			// Typed (possibly imprecisely): trust the checker, skip the
			// name heuristic only when the type resolved to something
			// concrete and non-error.
			if _, isBasic := tv.Type.Underlying().(*types.Basic); isBasic {
				continue
			}
		}
		if name := exprString(a); name == "err" || strings.HasSuffix(name, ".err") ||
			strings.HasSuffix(name, "Err") || strings.HasSuffix(name, "Error()") {
			return true
		}
	}
	return false
}
