// Command repolint runs the repository's invariant analyzers over the
// whole module. It is dependency-free (stdlib go/ast + go/types only)
// and is wired into CI as:
//
//	go run ./tools/repolint ./...
//
// The package pattern argument is accepted for familiarity but the
// tool always lints every package of the enclosing module. Exit
// status is 1 when any diagnostic survives; suppressions
// (//lint:ignore <analyzer> <reason>) are counted and printed so
// their number stays reviewable.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/tools/repolint/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, module, err := lint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := lint.Run(root, module, lint.All)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range res.Diags {
		fmt.Println(d)
	}
	if res.Suppressed > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d diagnostic(s) suppressed by //lint:ignore\n", res.Suppressed)
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d violation(s)\n", len(res.Diags))
		os.Exit(1)
	}
}
