// Command apisurface prints the exported API surface of the given
// package directories (default: forecast, the repository's public
// package) as one sorted line per declaration. The output is
// committed to API.txt and diffed in CI, so any change to the public
// API shows up in a PR's diff explicitly — the lightweight,
// dependency-free cousin of apidiff.
//
//	go run ./tools/apisurface > API.txt
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"sort"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"forecast"}
	}
	var lines []string
	for _, dir := range dirs {
		ls, err := surface(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apisurface:", err)
			os.Exit(1)
		}
		lines = append(lines, ls...)
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

// surface parses every non-test file of the package in dir and
// returns one line per exported declaration.
func surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, declLines(fset, name, decl)...)
			}
		}
	}
	return lines, nil
}

// declLines renders one exported declaration as zero or more stable,
// diff-friendly lines prefixed with the package name.
func declLines(fset *token.FileSet, pkg string, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		sig := render(fset, d.Type) // "func(params) results"
		sig = strings.TrimPrefix(sig, "func")
		if d.Recv != nil && len(d.Recv.List) == 1 {
			recv := render(fset, d.Recv.List[0].Type)
			if !ast.IsExported(strings.TrimPrefix(recv, "*")) {
				return nil
			}
			return []string{fmt.Sprintf("%s: method (%s) %s%s", pkg, recv, d.Name.Name, sig)}
		}
		return []string{fmt.Sprintf("%s: func %s%s", pkg, d.Name.Name, sig)}
	case *ast.GenDecl:
		var lines []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				lines = append(lines, typeLines(fset, pkg, s)...)
			case *ast.ValueSpec:
				for _, id := range s.Names {
					if !id.IsExported() {
						continue
					}
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					line := fmt.Sprintf("%s: %s %s", pkg, kind, id.Name)
					if s.Type != nil {
						line += " " + render(fset, s.Type)
					}
					lines = append(lines, line)
				}
			}
		}
		return lines
	}
	return nil
}

// typeLines renders an exported type: one line for the type itself
// plus one per exported struct field or interface method, so adding
// or removing a field is a one-line diff.
func typeLines(fset *token.FileSet, pkg string, s *ast.TypeSpec) []string {
	if !s.Name.IsExported() {
		return nil
	}
	name := s.Name.Name
	eq := ""
	if s.Assign.IsValid() {
		eq = "= " // type alias
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		lines := []string{fmt.Sprintf("%s: type %s %sstruct", pkg, name, eq)}
		for _, f := range t.Fields.List {
			typ := render(fset, f.Type)
			if len(f.Names) == 0 { // embedded
				lines = append(lines, fmt.Sprintf("%s: field %s.%s (embedded)", pkg, name, typ))
				continue
			}
			for _, id := range f.Names {
				if id.IsExported() {
					lines = append(lines, fmt.Sprintf("%s: field %s.%s %s", pkg, name, id.Name, typ))
				}
			}
		}
		return lines
	case *ast.InterfaceType:
		lines := []string{fmt.Sprintf("%s: type %s %sinterface", pkg, name, eq)}
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 { // embedded interface
				lines = append(lines, fmt.Sprintf("%s: ifacemethod %s.%s (embedded)", pkg, name, render(fset, m.Type)))
				continue
			}
			for _, id := range m.Names {
				if id.IsExported() {
					sig := strings.TrimPrefix(render(fset, m.Type), "func")
					lines = append(lines, fmt.Sprintf("%s: ifacemethod %s.%s%s", pkg, name, id.Name, sig))
				}
			}
		}
		return lines
	default:
		return []string{fmt.Sprintf("%s: type %s %s%s", pkg, name, eq, render(fset, s.Type))}
	}
}

// render prints an AST node in canonical gofmt style on one line.
func render(fset *token.FileSet, node ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<%T>", node)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
