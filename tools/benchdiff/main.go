// Command benchdiff compares a `go test -bench` run against the
// recorded baseline in BENCH_engine.json and reports per-benchmark
// deltas in ns/op, B/op and allocs/op.
//
//	go test -run=NONE -bench 'BenchmarkEngineBatch' -benchmem . | go run ./tools/benchdiff
//	go test -run=NONE -bench . -benchmem . > out.txt && go run ./tools/benchdiff -input out.txt
//
// Benchmarks present in only one side are skipped (the baseline records
// a curated subset; a -bench run may produce more). Every baseline
// entry carries the core count it was recorded under; an entry whose
// count differs from the current run's (the -N GOMAXPROCS suffix on
// the result line, absent = 1) is refused rather than compared —
// timings recorded under different parallelism are not the same
// experiment. If no common entry survives the core check, benchdiff
// exits 2.
//
// Timing and byte deltas beyond -tolerance are flagged; by default
// benchdiff only warns (exit 0), so CI can surface drift without
// turning a noisy shared runner into a flaky gate — pass -fail to turn
// flagged regressions into exit 1 for quiet dedicated hardware.
// Allocation counts are deterministic where timings are not, so they
// get a separate, tighter -tolerance-allocs, and -fail-allocs REGEXP
// gates (exit 1) alloc regressions on matching benchmarks even in
// warn-only timing mode. Regenerate the baseline with the command
// recorded in BENCH_engine.json's description field, then edit the
// ns_per_op/bytes_per_op/allocs_per_op values in place.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baseline mirrors the parts of BENCH_engine.json benchdiff needs;
// annotation fields (unit_of_work, notes) are ignored. The top-level
// cores value is the default for entries that do not carry their own.
type baseline struct {
	Description string                `json:"description"`
	Cores       int                   `json:"cores"`
	Benchmarks  map[string]*benchmark `json:"benchmarks"`
}

type benchmark struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Cores       int     `json:"cores"`
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkEngineBatch-8   38   57569475 ns/op   25616681 B/op   4905 allocs/op
//
// The -N GOMAXPROCS suffix is captured as the run's core count (the
// test binary omits it when GOMAXPROCS is 1), and the memory columns
// are optional (absent without -benchmem).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+([\d.]+) ns/op(?:.*?\s([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

// parseBench extracts benchmark results from -bench output. Repeated
// runs of one benchmark (-count > 1) keep the best (lowest ns/op) —
// the conventional noise floor for regression checks.
func parseBench(r io.Reader) (map[string]*benchmark, error) {
	out := make(map[string]*benchmark)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		b := &benchmark{Cores: 1}
		if m[2] != "" {
			b.Cores, _ = strconv.Atoi(m[2])
		}
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
			b.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		} else {
			b.BytesPerOp, b.AllocsPerOp = -1, -1 // no -benchmem columns
		}
		if prev, ok := out[m[1]]; !ok || b.NsPerOp < prev.NsPerOp {
			out[m[1]] = b
		}
	}
	return out, sc.Err()
}

// delta is the relative change from base to cur; 0 when base is 0.
func delta(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base
}

type row struct {
	name            string
	metric          string
	base, cur, d    float64
	beyondTolerance bool
	gated           bool // alloc regression on a -fail-allocs benchmark
}

// skip records a baseline entry refused because its recorded core
// count differs from the current run's.
type skip struct {
	name                string
	baseCores, curCores int
}

type options struct {
	tolerance      float64        // ns/op and B/op
	allocTolerance float64        // allocs/op (deterministic, so tighter)
	failAllocs     *regexp.Regexp // benchmarks whose alloc regressions gate
	defaultCores   int            // baseline entries without their own cores field
}

// diff compares current results against the baseline. Entries recorded
// under a different core count are refused (returned in skipped), the
// rest produce one row per comparable metric. warned counts tolerance
// overruns; gated counts alloc overruns on -fail-allocs benchmarks.
func diff(base, cur map[string]*benchmark, opt options) (rows []row, warned, gated int, skipped []skip) {
	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		b, c := base[name], cur[name]
		baseCores := b.Cores
		if baseCores == 0 {
			baseCores = opt.defaultCores
		}
		if baseCores != c.Cores {
			skipped = append(skipped, skip{name: name, baseCores: baseCores, curCores: c.Cores})
			continue
		}
		metrics := []struct {
			metric    string
			base, cur float64
			tolerance float64
		}{
			{"ns/op", b.NsPerOp, c.NsPerOp, opt.tolerance},
			{"B/op", b.BytesPerOp, c.BytesPerOp, opt.tolerance},
			{"allocs/op", b.AllocsPerOp, c.AllocsPerOp, opt.allocTolerance},
		}
		for _, m := range metrics {
			if m.cur < 0 {
				continue // run had no -benchmem columns
			}
			r := row{name: name, metric: m.metric, base: m.base, cur: m.cur, d: delta(m.base, m.cur)}
			if r.d > m.tolerance {
				r.beyondTolerance = true
				if m.metric == "allocs/op" && opt.failAllocs != nil && opt.failAllocs.MatchString(name) {
					r.gated = true
					gated++
				} else {
					warned++
				}
			}
			rows = append(rows, r)
		}
	}
	return rows, warned, gated, skipped
}

func run(baselinePath, inputPath string, opt options, failOnRegress bool, in io.Reader, out io.Writer) (int, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return 2, err
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return 2, fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	opt.defaultCores = base.Cores
	if opt.defaultCores == 0 {
		opt.defaultCores = 1
	}
	src := in
	if inputPath != "" {
		f, err := os.Open(inputPath)
		if err != nil {
			return 2, err
		}
		defer f.Close()
		src = f
	}
	cur, err := parseBench(src)
	if err != nil {
		return 2, err
	}
	if len(cur) == 0 {
		return 2, fmt.Errorf("no benchmark result lines in input")
	}

	rows, warned, gated, skipped := diff(base.Benchmarks, cur, opt)
	for _, s := range skipped {
		fmt.Fprintf(out, "refusing %s: baseline recorded on %d core(s), this run used %d — re-record the baseline on this hardware\n",
			s.name, s.baseCores, s.curCores)
	}
	if len(rows) == 0 {
		if len(skipped) > 0 {
			return 2, fmt.Errorf("every common benchmark was recorded under a different core count than this run; re-record %s", baselinePath)
		}
		return 2, fmt.Errorf("no benchmarks in common between the run and %s", baselinePath)
	}
	fmt.Fprintf(out, "%-36s %-10s %14s %14s %8s\n", "benchmark", "metric", "baseline", "current", "delta")
	for _, r := range rows {
		mark := ""
		if r.gated {
			mark = "  REGRESSION (gated)"
		} else if r.beyondTolerance {
			mark = "  REGRESSION"
		}
		fmt.Fprintf(out, "%-36s %-10s %14.0f %14.0f %+7.1f%%%s\n", r.name, r.metric, r.base, r.cur, 100*r.d, mark)
	}
	if gated > 0 {
		fmt.Fprintf(out, "\n%d alloc metric(s) regressed beyond %.0f%% on gated benchmarks (allocation counts are deterministic; this is a real regression, not noise)\n",
			gated, 100*opt.allocTolerance)
	}
	if warned > 0 {
		fmt.Fprintf(out, "\n%d metric(s) regressed beyond tolerance of the baseline in %s\n", warned, baselinePath)
		if !failOnRegress {
			fmt.Fprintln(out, "(warn-only mode: exiting 0; pass -fail to gate)")
		}
	}
	if gated > 0 || (warned > 0 && failOnRegress) {
		return 1, nil
	}
	return 0, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_engine.json", "baseline JSON to diff against")
	inputPath := flag.String("input", "", "file holding `go test -bench` output (default stdin)")
	tolerance := flag.Float64("tolerance", 0.25, "flag ns/op and B/op regressions beyond this relative delta (0.25 = 25%)")
	allocTolerance := flag.Float64("tolerance-allocs", 0.05, "flag allocs/op regressions beyond this relative delta")
	failAllocs := flag.String("fail-allocs", "", "regexp of benchmarks whose allocs/op regressions exit 1 even in warn-only mode")
	failOnRegress := flag.Bool("fail", false, "exit 1 on flagged regressions instead of warning")
	flag.Parse()

	opt := options{tolerance: *tolerance, allocTolerance: *allocTolerance}
	if *failAllocs != "" {
		re, err := regexp.Compile(*failAllocs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: bad -fail-allocs regexp:", err)
			os.Exit(2)
		}
		opt.failAllocs = re
	}
	code, err := run(*baselinePath, *inputPath, opt, *failOnRegress, os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
	}
	os.Exit(code)
}
