// Command benchdiff compares a `go test -bench` run against the
// recorded baseline in BENCH_engine.json and reports per-benchmark
// deltas in ns/op, B/op and allocs/op.
//
//	go test -run=NONE -bench 'BenchmarkEngineBatch' -benchmem . | go run ./tools/benchdiff
//	go test -run=NONE -bench . -benchmem . > out.txt && go run ./tools/benchdiff -input out.txt
//
// Benchmarks present in only one side are skipped (the baseline records
// a curated subset; a -bench run may produce more). A delta beyond
// -tolerance is flagged; by default benchdiff only warns (exit 0), so
// CI can surface drift without turning a noisy shared runner into a
// flaky gate — pass -fail to turn flagged regressions into exit 1 for
// quiet dedicated hardware. Regenerate the baseline with the command
// recorded in BENCH_engine.json's description field, then edit the
// ns_per_op/bytes_per_op/allocs_per_op values in place.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baseline mirrors the parts of BENCH_engine.json benchdiff needs;
// annotation fields (unit_of_work, notes) are ignored.
type baseline struct {
	Description string                `json:"description"`
	Benchmarks  map[string]*benchmark `json:"benchmarks"`
}

type benchmark struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkEngineBatch-8   38   57569475 ns/op   25616681 B/op   4905 allocs/op
//
// The -N GOMAXPROCS suffix is stripped, and the memory columns are
// optional (absent without -benchmem).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*?\s([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

// parseBench extracts benchmark results from -bench output. Repeated
// runs of one benchmark (-count > 1) keep the best (lowest ns/op) —
// the conventional noise floor for regression checks.
func parseBench(r io.Reader) (map[string]*benchmark, error) {
	out := make(map[string]*benchmark)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		b := &benchmark{}
		b.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			b.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
			b.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		} else {
			b.BytesPerOp, b.AllocsPerOp = -1, -1 // no -benchmem columns
		}
		if prev, ok := out[m[1]]; !ok || b.NsPerOp < prev.NsPerOp {
			out[m[1]] = b
		}
	}
	return out, sc.Err()
}

// delta is the relative change from base to cur; 0 when base is 0.
func delta(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base
}

type row struct {
	name            string
	metric          string
	base, cur, d    float64
	beyondTolerance bool
}

// diff compares current results against the baseline, returning one
// row per comparable metric and the count of flagged regressions.
func diff(base, cur map[string]*benchmark, tolerance float64) (rows []row, flagged int) {
	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		b, c := base[name], cur[name]
		metrics := []struct {
			metric    string
			base, cur float64
		}{
			{"ns/op", b.NsPerOp, c.NsPerOp},
			{"B/op", b.BytesPerOp, c.BytesPerOp},
			{"allocs/op", b.AllocsPerOp, c.AllocsPerOp},
		}
		for _, m := range metrics {
			if m.cur < 0 {
				continue // run had no -benchmem columns
			}
			d := delta(m.base, m.cur)
			over := d > tolerance
			if over {
				flagged++
			}
			rows = append(rows, row{name: name, metric: m.metric, base: m.base, cur: m.cur, d: d, beyondTolerance: over})
		}
	}
	return rows, flagged
}

func run(baselinePath, inputPath string, tolerance float64, failOnRegress bool, in io.Reader, out io.Writer) (int, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return 2, err
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return 2, fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	src := in
	if inputPath != "" {
		f, err := os.Open(inputPath)
		if err != nil {
			return 2, err
		}
		defer f.Close()
		src = f
	}
	cur, err := parseBench(src)
	if err != nil {
		return 2, err
	}
	if len(cur) == 0 {
		return 2, fmt.Errorf("no benchmark result lines in input")
	}

	rows, flagged := diff(base.Benchmarks, cur, tolerance)
	if len(rows) == 0 {
		return 2, fmt.Errorf("no benchmarks in common between the run and %s", baselinePath)
	}
	fmt.Fprintf(out, "%-36s %-10s %14s %14s %8s\n", "benchmark", "metric", "baseline", "current", "delta")
	for _, r := range rows {
		mark := ""
		if r.beyondTolerance {
			mark = "  REGRESSION"
		}
		fmt.Fprintf(out, "%-36s %-10s %14.0f %14.0f %+7.1f%%%s\n", r.name, r.metric, r.base, r.cur, 100*r.d, mark)
	}
	if flagged > 0 {
		fmt.Fprintf(out, "\n%d metric(s) regressed beyond %.0f%% of the baseline in %s\n", flagged, 100*tolerance, baselinePath)
		if failOnRegress {
			return 1, nil
		}
		fmt.Fprintln(out, "(warn-only mode: exiting 0; pass -fail to gate)")
	}
	return 0, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_engine.json", "baseline JSON to diff against")
	inputPath := flag.String("input", "", "file holding `go test -bench` output (default stdin)")
	tolerance := flag.Float64("tolerance", 0.25, "flag regressions beyond this relative delta (0.25 = 25%)")
	failOnRegress := flag.Bool("fail", false, "exit 1 on flagged regressions instead of warning")
	flag.Parse()

	code, err := run(*baselinePath, *inputPath, *tolerance, *failOnRegress, os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
	}
	os.Exit(code)
}
