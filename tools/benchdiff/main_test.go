package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngineBatch-8             	      38	  57569475 ns/op	25616681 B/op	    4905 allocs/op
BenchmarkEngineBatch-8             	      40	  59000000 ns/op	25616000 B/op	    4905 allocs/op
BenchmarkShardsAppend              	     214	  10952701 ns/op	 1822115 B/op	     104 allocs/op
BenchmarkRebalanceSkew-8           	      20	 198559959 ns/op	        1.53 max/min_live	24599496 B/op	    6159 allocs/op
BenchmarkNoMem                     	     100	   1234567 ns/op
PASS
ok  	repro	5.409s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	b := got["BenchmarkEngineBatch"]
	if b == nil {
		t.Fatal("BenchmarkEngineBatch not parsed (GOMAXPROCS suffix must be stripped)")
	}
	if b.NsPerOp != 57569475 {
		t.Fatalf("repeated runs must keep the best ns/op, got %v", b.NsPerOp)
	}
	if b.BytesPerOp != 25616681 || b.AllocsPerOp != 4905 {
		t.Fatalf("memory columns parsed as %v B/op %v allocs/op", b.BytesPerOp, b.AllocsPerOp)
	}
	if got["BenchmarkShardsAppend"] == nil {
		t.Fatal("suffix-free benchmark line not parsed")
	}
	// Custom ReportMetric columns between ns/op and B/op must not
	// derail the memory columns.
	if rb := got["BenchmarkRebalanceSkew"]; rb == nil || rb.BytesPerOp != 24599496 {
		t.Fatalf("ReportMetric line parsed as %+v", got["BenchmarkRebalanceSkew"])
	}
	if nm := got["BenchmarkNoMem"]; nm == nil || nm.BytesPerOp != -1 {
		t.Fatalf("missing -benchmem columns must parse as -1 sentinels, got %+v", got["BenchmarkNoMem"])
	}
}

func TestDiffTolerance(t *testing.T) {
	base := map[string]*benchmark{
		"BenchmarkA": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkB": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
	}
	cur := map[string]*benchmark{
		"BenchmarkA":     {NsPerOp: 110, BytesPerOp: 1000, AllocsPerOp: 10}, // +10%: inside 25%
		"BenchmarkB":     {NsPerOp: 200, BytesPerOp: 1000, AllocsPerOp: 20}, // ns and allocs doubled
		"BenchmarkExtra": {NsPerOp: 1},                                      // not in baseline: skipped
	}
	rows, flagged := diff(base, cur, 0.25)
	if flagged != 2 {
		t.Fatalf("flagged = %d, want ns/op and allocs/op of B", flagged)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 3 metrics for each of 2 common benchmarks", len(rows))
	}
	for _, r := range rows {
		over := r.name == "BenchmarkB" && (r.metric == "ns/op" || r.metric == "allocs/op")
		if r.beyondTolerance != over {
			t.Fatalf("row %+v: beyondTolerance = %v", r, r.beyondTolerance)
		}
	}
	// Faster-than-baseline is never flagged: only regressions gate.
	if _, flagged := diff(base, map[string]*benchmark{"BenchmarkA": {NsPerOp: 1, BytesPerOp: 1, AllocsPerOp: 1}}, 0.25); flagged != 0 {
		t.Fatalf("improvement flagged as regression")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	baseJSON := `{"description":"test","benchmarks":{
		"BenchmarkEngineBatch":{"ns_per_op":57569475,"bytes_per_op":25616681,"allocs_per_op":4905}}}`
	if err := os.WriteFile(basePath, []byte(baseJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	code, err := run(basePath, "", 0.25, false, strings.NewReader(sampleOutput), &out)
	if err != nil || code != 0 {
		t.Fatalf("run: code %d, err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkEngineBatch") {
		t.Fatalf("report missing the common benchmark:\n%s", out.String())
	}

	// A doubled baseline makes the current run look 2x slower: warn-only
	// still exits 0, -fail exits 1.
	slowBase := strings.ReplaceAll(baseJSON, "57569475", "28000000")
	if err := os.WriteFile(basePath, []byte(slowBase), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = run(basePath, "", 0.25, false, strings.NewReader(sampleOutput), &out)
	if err != nil || code != 0 {
		t.Fatalf("warn-only regressed run: code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regression not reported:\n%s", out.String())
	}
	code, _ = run(basePath, "", 0.25, true, strings.NewReader(sampleOutput), &out)
	if code != 1 {
		t.Fatalf("-fail mode: code %d, want 1", code)
	}

	// The real repo baseline must parse and share benchmarks with real
	// output shapes.
	code, err = run(filepath.Join("..", "..", "BENCH_engine.json"), "", 0.25, false, strings.NewReader(sampleOutput), &out)
	if err != nil || code != 0 {
		t.Fatalf("repo baseline: code %d, err %v", code, err)
	}
}
