package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngineBatch-8             	      38	  57569475 ns/op	25616681 B/op	    4905 allocs/op
BenchmarkEngineBatch-8             	      40	  59000000 ns/op	25616000 B/op	    4905 allocs/op
BenchmarkShardsAppend              	     214	  10952701 ns/op	 1822115 B/op	     104 allocs/op
BenchmarkRebalanceSkew-8           	      20	 198559959 ns/op	        1.53 max/min_live	24599496 B/op	    6159 allocs/op
BenchmarkNoMem                     	     100	   1234567 ns/op
PASS
ok  	repro	5.409s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	b := got["BenchmarkEngineBatch"]
	if b == nil {
		t.Fatal("BenchmarkEngineBatch not parsed (GOMAXPROCS suffix must be stripped)")
	}
	if b.NsPerOp != 57569475 {
		t.Fatalf("repeated runs must keep the best ns/op, got %v", b.NsPerOp)
	}
	if b.BytesPerOp != 25616681 || b.AllocsPerOp != 4905 {
		t.Fatalf("memory columns parsed as %v B/op %v allocs/op", b.BytesPerOp, b.AllocsPerOp)
	}
	if b.Cores != 8 {
		t.Fatalf("the -8 GOMAXPROCS suffix must become Cores = 8, got %d", b.Cores)
	}
	sa := got["BenchmarkShardsAppend"]
	if sa == nil {
		t.Fatal("suffix-free benchmark line not parsed")
	}
	if sa.Cores != 1 {
		t.Fatalf("a suffix-free line means GOMAXPROCS=1, got Cores = %d", sa.Cores)
	}
	// Custom ReportMetric columns between ns/op and B/op must not
	// derail the memory columns.
	if rb := got["BenchmarkRebalanceSkew"]; rb == nil || rb.BytesPerOp != 24599496 {
		t.Fatalf("ReportMetric line parsed as %+v", got["BenchmarkRebalanceSkew"])
	}
	if nm := got["BenchmarkNoMem"]; nm == nil || nm.BytesPerOp != -1 {
		t.Fatalf("missing -benchmem columns must parse as -1 sentinels, got %+v", got["BenchmarkNoMem"])
	}
}

func TestDiffTolerance(t *testing.T) {
	base := map[string]*benchmark{
		"BenchmarkA": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10, Cores: 1},
		"BenchmarkB": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10, Cores: 1},
	}
	cur := map[string]*benchmark{
		"BenchmarkA":     {NsPerOp: 110, BytesPerOp: 1000, AllocsPerOp: 10, Cores: 1}, // +10%: inside 25%
		"BenchmarkB":     {NsPerOp: 200, BytesPerOp: 1000, AllocsPerOp: 20, Cores: 1}, // ns and allocs doubled
		"BenchmarkExtra": {NsPerOp: 1, Cores: 1},                                      // not in baseline: skipped
	}
	opt := options{tolerance: 0.25, allocTolerance: 0.25, defaultCores: 1}
	rows, warned, gated, skipped := diff(base, cur, opt)
	if warned != 2 || gated != 0 {
		t.Fatalf("warned = %d gated = %d, want ns/op and allocs/op of B warned", warned, gated)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v, want none at matching core counts", skipped)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 3 metrics for each of 2 common benchmarks", len(rows))
	}
	for _, r := range rows {
		over := r.name == "BenchmarkB" && (r.metric == "ns/op" || r.metric == "allocs/op")
		if r.beyondTolerance != over {
			t.Fatalf("row %+v: beyondTolerance = %v", r, r.beyondTolerance)
		}
	}
	// Faster-than-baseline is never flagged: only regressions gate.
	fast := map[string]*benchmark{"BenchmarkA": {NsPerOp: 1, BytesPerOp: 1, AllocsPerOp: 1, Cores: 1}}
	if _, warned, gated, _ := diff(base, fast, opt); warned != 0 || gated != 0 {
		t.Fatalf("improvement flagged as regression")
	}
}

func TestDiffCoresRefusal(t *testing.T) {
	base := map[string]*benchmark{
		"BenchmarkA": {NsPerOp: 100, BytesPerOp: 100, AllocsPerOp: 1, Cores: 8},
		"BenchmarkB": {NsPerOp: 100, BytesPerOp: 100, AllocsPerOp: 1}, // inherits defaultCores
	}
	cur := map[string]*benchmark{
		"BenchmarkA": {NsPerOp: 100, BytesPerOp: 100, AllocsPerOp: 1, Cores: 1},
		"BenchmarkB": {NsPerOp: 100, BytesPerOp: 100, AllocsPerOp: 1, Cores: 1},
	}
	opt := options{tolerance: 0.25, allocTolerance: 0.25, defaultCores: 1}
	rows, _, _, skipped := diff(base, cur, opt)
	if len(skipped) != 1 || skipped[0].name != "BenchmarkA" || skipped[0].baseCores != 8 || skipped[0].curCores != 1 {
		t.Fatalf("skipped = %+v, want BenchmarkA refused 8-vs-1", skipped)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want only BenchmarkB's 3 metrics (B inherits the baseline default of 1 core)", len(rows))
	}
	for _, r := range rows {
		if r.name != "BenchmarkB" {
			t.Fatalf("row for refused benchmark: %+v", r)
		}
	}
}

func TestDiffAllocGating(t *testing.T) {
	base := map[string]*benchmark{
		"BenchmarkEngineBatch": {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 100, Cores: 1},
		"BenchmarkOther":       {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 100, Cores: 1},
	}
	cur := map[string]*benchmark{
		"BenchmarkEngineBatch": {NsPerOp: 300, BytesPerOp: 1000, AllocsPerOp: 120, Cores: 1}, // both regress
		"BenchmarkOther":       {NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 120, Cores: 1}, // allocs only
	}
	opt := options{
		tolerance:      2.5, // timings warn-only with huge headroom
		allocTolerance: 0.05,
		failAllocs:     regexp.MustCompile(`^BenchmarkEngineBatch`),
		defaultCores:   1,
	}
	rows, warned, gated, _ := diff(base, cur, opt)
	if gated != 1 {
		t.Fatalf("gated = %d, want exactly the EngineBatch alloc regression", gated)
	}
	if warned != 1 {
		t.Fatalf("warned = %d, want the ungated BenchmarkOther alloc regression", warned)
	}
	for _, r := range rows {
		wantGated := r.name == "BenchmarkEngineBatch" && r.metric == "allocs/op"
		if r.gated != wantGated {
			t.Fatalf("row %+v: gated = %v, want %v", r, r.gated, wantGated)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	baseJSON := `{"description":"test","cores":8,"benchmarks":{
		"BenchmarkEngineBatch":{"ns_per_op":57569475,"bytes_per_op":25616681,"allocs_per_op":4905,"cores":8}}}`
	if err := os.WriteFile(basePath, []byte(baseJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	opt := options{tolerance: 0.25, allocTolerance: 0.05}

	var out strings.Builder
	code, err := run(basePath, "", opt, false, strings.NewReader(sampleOutput), &out)
	if err != nil || code != 0 {
		t.Fatalf("run: code %d, err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkEngineBatch") {
		t.Fatalf("report missing the common benchmark:\n%s", out.String())
	}

	// A doubled baseline makes the current run look 2x slower: warn-only
	// still exits 0, -fail exits 1.
	slowBase := strings.ReplaceAll(baseJSON, "57569475", "28000000")
	if err := os.WriteFile(basePath, []byte(slowBase), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = run(basePath, "", opt, false, strings.NewReader(sampleOutput), &out)
	if err != nil || code != 0 {
		t.Fatalf("warn-only regressed run: code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regression not reported:\n%s", out.String())
	}
	code, _ = run(basePath, "", opt, true, strings.NewReader(sampleOutput), &out)
	if code != 1 {
		t.Fatalf("-fail mode: code %d, want 1", code)
	}

	// An alloc regression on a -fail-allocs benchmark exits 1 even in
	// warn-only timing mode.
	allocBase := strings.ReplaceAll(baseJSON, `"allocs_per_op":4905`, `"allocs_per_op":1000`)
	if err := os.WriteFile(basePath, []byte(allocBase), 0o644); err != nil {
		t.Fatal(err)
	}
	gatedOpt := opt
	gatedOpt.failAllocs = regexp.MustCompile(`^BenchmarkEngineBatch`)
	out.Reset()
	code, err = run(basePath, "", gatedOpt, false, strings.NewReader(sampleOutput), &out)
	if err != nil || code != 1 {
		t.Fatalf("gated alloc regression: code %d, err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION (gated)") {
		t.Fatalf("gated regression not marked:\n%s", out.String())
	}

	// A baseline recorded under a different core count than every
	// common benchmark in the run is refused outright.
	oneCoreRun := "BenchmarkEngineBatch \t 10 \t 57569475 ns/op\t25616681 B/op\t 4905 allocs/op\n"
	out.Reset()
	code, err = run(basePath, "", opt, false, strings.NewReader(oneCoreRun), &out)
	if code != 2 || err == nil {
		t.Fatalf("cores mismatch: code %d, err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "refusing BenchmarkEngineBatch") {
		t.Fatalf("refusal not reported per-entry:\n%s", out.String())
	}

	// The real repo baseline must parse and share benchmarks with real
	// output shapes. The repo baseline is recorded on 1 core, so feed a
	// suffix-free (GOMAXPROCS=1) line.
	out.Reset()
	code, err = run(filepath.Join("..", "..", "BENCH_engine.json"), "", opt, false, strings.NewReader(oneCoreRun), &out)
	if err != nil || code != 0 {
		t.Fatalf("repo baseline: code %d, err %v\n%s", code, err, out.String())
	}
}
