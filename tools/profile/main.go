// Command profile runs BenchmarkEngineBatch under the CPU and heap
// profilers and prints the top-10 flat costs of each — the one-command
// answer to "where does a generation's time and memory go now?".
//
//	go run ./tools/profile
//	go run ./tools/profile -bench 'BenchmarkEngineBatch$' -benchtime 2s -dir /tmp/prof
//
// The profiles (cpu.out, mem.out, and the bench binary pprof needs to
// symbolize them) are left in -dir for deeper interactive sessions:
//
//	go tool pprof /tmp/prof/bench.test /tmp/prof/cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
)

func main() {
	bench := flag.String("bench", "BenchmarkEngineBatch$", "benchmark regexp to profile")
	benchtime := flag.String("benchtime", "2s", "per-benchmark budget passed to go test")
	dir := flag.String("dir", "", "directory for profile artifacts (default: a fresh temp dir)")
	pkg := flag.String("pkg", ".", "package holding the benchmark")
	flag.Parse()

	if err := run(*bench, *benchtime, *dir, *pkg); err != nil {
		fmt.Fprintln(os.Stderr, "profile:", err)
		os.Exit(1)
	}
}

func run(bench, benchtime, dir, pkg string) error {
	if dir == "" {
		d, err := os.MkdirTemp("", "engineprof")
		if err != nil {
			return err
		}
		dir = d
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	bin := filepath.Join(dir, "bench.test")

	// One bench invocation records both profiles; -o keeps the test
	// binary so pprof can symbolize without rebuilding.
	cmd := exec.Command("go", "test", "-run=NONE", "-bench", bench,
		"-benchtime", benchtime, "-benchmem",
		"-cpuprofile", cpu, "-memprofile", mem, "-o", bin, pkg)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	fmt.Printf("profiling %s (-benchtime %s)...\n\n", bench, benchtime)
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("bench run: %w", err)
	}

	for _, p := range []struct{ title, flags, path string }{
		{"top-10 CPU (flat)", "-top", cpu},
		{"top-10 allocated bytes (flat)", "-top -sample_index=alloc_space", mem},
		{"top-10 allocated objects (flat)", "-top -sample_index=alloc_objects", mem},
	} {
		fmt.Printf("\n=== %s ===\n", p.title)
		args := []string{"tool", "pprof", "-nodecount=10"}
		for _, f := range splitFlags(p.flags) {
			args = append(args, f)
		}
		args = append(args, bin, p.path)
		cmd := exec.Command("go", args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("pprof %s: %w", p.path, err)
		}
	}
	fmt.Printf("\nprofiles kept in %s (cpu.out, mem.out, bench.test)\n", dir)
	return nil
}

// splitFlags splits a space-separated flag string; none of our flag
// values contain spaces.
func splitFlags(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}
