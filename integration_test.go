// Integration tests: the full pipeline a downstream user runs, from
// series generation through training, serialization and scoring —
// per domain and across process boundaries (save/load).
package repro

import (
	"context"

	"math"
	"path/filepath"
	"testing"

	"repro/internal/arma"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/neural"
	"repro/internal/series"
)

// trainQuick evolves a small rule system on the dataset.
func trainQuick(t *testing.T, train *series.Dataset, seed int64) *core.RuleSet {
	t.Helper()
	base := core.Default(train.D)
	base.Horizon = train.Horizon
	base.PopSize = 30
	base.Generations = 800
	base.Seed = seed
	res, err := core.MultiRun(context.Background(), core.MultiRunConfig{
		Base:           base,
		CoverageTarget: 0.9,
		MaxExecutions:  2,
	}, train)
	if err != nil {
		t.Fatal(err)
	}
	if res.RuleSet.Len() == 0 {
		t.Fatal("no rules evolved")
	}
	return res.RuleSet
}

func TestPipelineMackeyGlass(t *testing.T) {
	trainSeries, testSeries, err := series.MackeyGlassPaper()
	if err != nil {
		t.Fatal(err)
	}
	train, err := series.WindowEmbed(trainSeries, 4, 6, 50)
	if err != nil {
		t.Fatal(err)
	}
	test, err := series.WindowEmbed(testSeries, 4, 6, 50)
	if err != nil {
		t.Fatal(err)
	}
	rs := trainQuick(t, train, 7)
	pred, mask := rs.PredictDataset(test)
	nmse, cov, err := metrics.MaskedNMSE(pred, test.Targets, mask)
	if err != nil {
		t.Fatal(err)
	}
	if cov < 0.2 {
		t.Fatalf("coverage %v too low", cov)
	}
	if nmse >= 1 {
		t.Fatalf("NMSE %v no better than the mean predictor", nmse)
	}
}

func TestPipelineVeniceWithSerialization(t *testing.T) {
	trainSeries, valSeries, err := series.VenicePaper(2500, 600, 42)
	if err != nil {
		t.Fatal(err)
	}
	train, err := series.Window(trainSeries, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	val, err := series.Window(valSeries, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs := trainQuick(t, train, 11)

	// Round-trip through disk, as the CLI does between train and eval.
	path := filepath.Join(t.TempDir(), "rules.json")
	if err := rs.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	p1, m1 := rs.PredictDataset(val)
	p2, m2 := loaded.PredictDataset(val)
	for i := range p1 {
		if m1[i] != m2[i] || p1[i] != p2[i] {
			t.Fatalf("loaded system diverges at %d", i)
		}
	}
	rmse, cov, err := metrics.MaskedRMSE(p1, val.Targets, m1)
	if err != nil {
		t.Fatal(err)
	}
	if cov < 0.3 {
		t.Fatalf("coverage %v", cov)
	}
	// Horizon-1 tide prediction must be far better than the series std
	// (~28 cm).
	if rmse > 15 {
		t.Fatalf("h=1 RMSE %v cm implausibly bad", rmse)
	}
}

func TestPipelineSunspotsAllLearners(t *testing.T) {
	_, trainSeries, valSeries, err := series.SunspotsPaper(42)
	if err != nil {
		t.Fatal(err)
	}
	train, err := series.Window(trainSeries, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	val, err := series.Window(valSeries, 24, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Rule system.
	rs := trainQuick(t, train, 13)
	_, mask := rs.PredictDataset(val)
	if metrics.Coverage(mask) == 0 {
		t.Fatal("rule system abstained everywhere")
	}

	// MLP.
	mlpCfg := neural.DefaultMLP()
	mlpCfg.Epochs = 10
	mlp, err := neural.NewMLP(24, mlpCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mlp.Train(train); err != nil {
		t.Fatal(err)
	}
	mlpPred, err := mlp.PredictDataset(val)
	if err != nil {
		t.Fatal(err)
	}
	mlpE, err := metrics.GalvanError(mlpPred, val.Targets, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Elman.
	elCfg := neural.DefaultElman()
	elCfg.Epochs = 6
	el, err := neural.NewElman(elCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := el.Train(train); err != nil {
		t.Fatal(err)
	}
	elPred, err := el.PredictDataset(val)
	if err != nil {
		t.Fatal(err)
	}
	elE, err := metrics.GalvanError(elPred, val.Targets, 1)
	if err != nil {
		t.Fatal(err)
	}

	// AR baseline.
	ar, err := arma.FitAR(trainSeries, 12)
	if err != nil {
		t.Fatal(err)
	}
	arPred, err := ar.PredictDataset(val)
	if err != nil {
		t.Fatal(err)
	}
	arE, err := metrics.GalvanError(arPred, val.Targets, 1)
	if err != nil {
		t.Fatal(err)
	}

	for name, e := range map[string]float64{"mlp": mlpE, "elman": elE, "ar": arE} {
		if math.IsNaN(e) || e <= 0 || e > 0.5 {
			t.Fatalf("%s Galván error %v implausible", name, e)
		}
	}
}

func TestPipelineCSVThroughDisk(t *testing.T) {
	s, err := series.Venice(series.DefaultVenice(1200, 3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "series.csv")
	if err := series.SaveCSV(path, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := series.LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("CSV round trip lost samples: %d vs %d", loaded.Len(), s.Len())
	}
	for i := range s.Values {
		if math.Abs(loaded.Values[i]-s.Values[i]) > 1e-9 {
			t.Fatalf("CSV round trip altered value %d", i)
		}
	}
}

func TestPipelineIteratedVsDirect(t *testing.T) {
	// A horizon-1 system iterated 5 steps should still beat the mean
	// predictor at horizon 5 on a smooth series.
	trainSeries, testSeries, err := series.MackeyGlassPaper()
	if err != nil {
		t.Fatal(err)
	}
	train, err := series.Window(trainSeries, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs := trainQuick(t, train, 17)

	const steps = 5
	vals := testSeries.Values
	var se, seMean, n float64
	mean := 0.0
	for _, v := range train.Targets {
		mean += v
	}
	mean /= float64(train.Len())
	for i := 0; i+4+steps <= len(vals); i += 7 {
		traj, done := rs.IteratedForecast(vals[i:i+4], steps)
		if done < steps {
			continue
		}
		want := vals[i+4+steps-1]
		d := traj[steps-1] - want
		se += d * d
		dm := mean - want
		seMean += dm * dm
		n++
	}
	if n < 10 {
		t.Fatalf("only %v complete iterated trajectories", n)
	}
	if se >= seMean {
		t.Fatalf("iterated forecast (SSE %v) no better than mean predictor (SSE %v)", se, seMean)
	}
}
